"""Integration tests: the committed .click examples and the CLI frontend.

The ``examples/click/`` files are byte-for-byte twins of the programmatic
evaluation pipelines: stripping the leading comment header leaves exactly
the text ``repro.click.emit_click`` produces, and elaborating them yields
fingerprint-identical pipelines -- so verdicts and summary-cache entries
are shared between the two worlds.
"""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.click import emit_click, load_pipeline
from repro.dataplane import pipelines as builders
from repro.verifier.api import VerifierConfig, summarize_once, verify_crash_freedom
from repro.verifier.cache import SummaryCache

REPO = Path(__file__).resolve().parents[2]
CLICK_DIR = REPO / "examples" / "click"

#: committed config -> its programmatic twin
TWINS = {
    "fig4a.click": builders.build_fig4a_router,
    "fig4a-full.click": lambda: builders.build_ip_router("edge"),
    "fig4b.click": builders.build_network_gateway,
    "fig4c.click": builders.build_filter_chain,
    "fig4d.click": builders.build_loop_microbenchmark,
    "lsrr-firewall.click": builders.build_lsrr_firewall,
}


def _body(text: str) -> str:
    """Drop the leading comment header (up to the first blank line)."""
    head, _, rest = text.partition("\n\n")
    assert all(line.startswith("//") for line in head.splitlines())
    return rest


@pytest.mark.parametrize("filename", sorted(TWINS))
def test_twin_is_byte_for_byte(filename):
    """The committed file body is exactly the canonical emission."""
    committed = (CLICK_DIR / filename).read_text()
    programmatic = TWINS[filename]()
    assert _body(committed) == emit_click(programmatic, header="")


@pytest.mark.parametrize("filename", sorted(TWINS))
def test_twin_fingerprints_match(filename):
    parsed = load_pipeline(CLICK_DIR / filename)
    programmatic = TWINS[filename]()
    fingerprint = programmatic.fingerprint()
    assert fingerprint is not None
    assert parsed.fingerprint() == fingerprint
    # Same element names in both worlds (the cache keys on them).
    assert [e.name for e in parsed.elements] == \
        [e.name for e in programmatic.elements]


def _verify_both(filename, builder, config):
    parsed = verify_crash_freedom(load_pipeline(CLICK_DIR / filename),
                                  config=config)
    programmatic = verify_crash_freedom(builder(), config=config)
    assert str(parsed.verdict) == str(programmatic.verdict)
    return parsed, programmatic


def test_fig4c_verdicts_match_and_cache_is_shared(tmp_path):
    """Config-file and programmatic twins: same verdicts, shared cache."""
    cache_dir = str(tmp_path / "cache")
    config = VerifierConfig(cache_enabled=True, cache_dir=cache_dir)
    parsed, _ = _verify_both("fig4c.click", builders.build_filter_chain, config)
    assert str(parsed.verdict) == "proved"
    # The programmatic run came second: step 1 must have been a cache hit.
    rerun = verify_crash_freedom(builders.build_filter_chain(), config=config)
    assert rerun.stats.cache_hits == 1 and rerun.stats.cache_misses == 0


def test_fig4d_verdicts_match(tmp_path):
    config = VerifierConfig(cache_enabled=True,
                            cache_dir=str(tmp_path / "cache"))
    _verify_both("fig4d.click", builders.build_loop_microbenchmark, config)


def test_fig4a_verdicts_match_with_warm_cache(tmp_path):
    """The acceptance scenario: fig4a.click == programmatic fig4a, twice.

    (fig4a.click is the Fig. 4(a) router at the scenario cut -- the same
    pipeline the perf harness's fig4a scenario verifies -- so a cold run
    completes in seconds; ``fig4a-full.click`` is the full-stage twin,
    byte-for-byte- and fingerprint-tested above but far too expensive to
    cold-verify in the suite.)
    """
    cache_dir = str(tmp_path / "cache")
    config = VerifierConfig(cache_enabled=True, cache_dir=cache_dir)
    parsed, programmatic = _verify_both(
        "fig4a.click", builders.build_fig4a_router, config)
    assert str(parsed.verdict) == str(programmatic.verdict) == "proved"
    # Warm rerun of the .click file: every element served from the cache.
    warm = summarize_once(load_pipeline(CLICK_DIR / "fig4a.click"),
                          config=config)
    assert warm.cache_hits == len(warm.pipeline.elements)
    assert warm.cache_misses == 0


def test_pipeline_level_cache_entry(tmp_path):
    """An unchanged pipeline answers step 1 from one whole-pipeline entry."""
    cache = SummaryCache(str(tmp_path / "cache"))
    config = VerifierConfig(cache_enabled=True)
    pipeline = builders.build_filter_chain()
    key = cache.pipeline_key(pipeline, config)
    assert key is not None
    cold = summarize_once(pipeline, config=config.copy(cache_dir=str(tmp_path / "cache")))
    assert cold.cache_misses == 1
    assert cache.get(key) is not None, "clean step-1 results are stored whole"
    warm = summarize_once(builders.build_filter_chain(),
                          config=config.copy(cache_dir=str(tmp_path / "cache")))
    assert warm.cache_hits == 1 and warm.cache_misses == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_verify_click_file(tmp_path, capsys):
    status = cli.main(["verify", str(CLICK_DIR / "fig4c.click"),
                       "--cache-dir", str(tmp_path / "cache"), "--json"])
    captured = capsys.readouterr()
    assert status == 0
    payload = json.loads(captured.out)
    assert payload["verdict"] == "proved"
    assert payload["pipeline"] == "fig4c"
    assert "[click]" in captured.err


def test_cli_verify_json_payload_is_versioned(tmp_path, capsys):
    # PR 9: the JSON payload carries the stats schema version and the
    # per-backend counters, and --backend portfolio stays sound without z3
    # (it resolves to the native engine on machines without the soft dep).
    from repro.verifier.results import STATS_SCHEMA

    status = cli.main(["verify", str(CLICK_DIR / "fig4c.click"),
                       "--cache-dir", str(tmp_path / "cache"), "--json",
                       "--backend", "portfolio"])
    captured = capsys.readouterr()
    assert status == 0
    payload = json.loads(captured.out)
    assert payload["schema"] == STATS_SCHEMA
    assert "native" in payload["stats"]["solver_backends"]


def test_cli_verify_click_diagnostic_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.click"
    bad.write_text("f :: IPFliter(allow all);\n")
    status = cli.main(["verify", str(bad)])
    captured = capsys.readouterr()
    assert status == 3
    assert "unknown element class 'IPFliter'" in captured.err
    assert "bad.click:1:6" in captured.err


def test_cli_elements_listing(capsys):
    assert cli.main(["elements"]) == 0
    out = capsys.readouterr().out
    assert "IPOptions" in out and "VerifiedNat" in out


def test_cli_elements_markdown_matches_committed_catalog(capsys):
    """Local freshness gate for docs/ELEMENTS.md (CI diffs the same way)."""
    assert cli.main(["elements", "--markdown"]) == 0
    generated = capsys.readouterr().out
    committed = (REPO / "docs" / "ELEMENTS.md").read_text()
    assert generated == committed, (
        "docs/ELEMENTS.md is stale; regenerate with "
        "`PYTHONPATH=src python -m repro elements --markdown > docs/ELEMENTS.md`")


def test_cli_pipelines_lists_click_twins(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert cli.main(["pipelines"]) == 0
    out = capsys.readouterr().out
    assert "click twin: examples/click/fig4a.click" in out
    assert "click twin: examples/click/lsrr-firewall.click" in out
