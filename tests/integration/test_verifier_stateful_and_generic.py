"""Verifier integration tests for stateful elements and the generic baseline."""

import pytest

from repro.dataplane.elements import CounterOverflowExample, TrafficMonitor, VerifiedNat
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.pipelines import build_filter_chain, build_loop_microbenchmark
from repro.verifier import GenericVerifier, Verdict, VerifierConfig, verify_crash_freedom
from repro.verifier.state_patterns import analyze_element_summary
from repro.verifier.summaries import summarize_element

CONFIG = VerifierConfig(time_budget=120)


class TestStatefulElements:
    def test_verified_nat_is_crash_free_under_arbitrary_state(self):
        pipeline = Pipeline.linear([VerifiedNat(name="nat")], name="nat-only")
        result = verify_crash_freedom(pipeline, config=CONFIG)
        assert result.verdict is Verdict.PROVED

    def test_traffic_monitor_is_crash_free_and_counter_safe(self):
        summary = summarize_element(TrafficMonitor(), CONFIG)
        assert not summary.crash_segments
        report = analyze_element_summary(summary)
        assert report.safe, [f.pattern for f in report.findings]

    def test_fig3_counter_overflow_is_detected_by_pattern_matching(self):
        summary = summarize_element(CounterOverflowExample(), CONFIG)
        report = analyze_element_summary(summary)
        risky = report.overflow_risks
        assert risky, "the unbounded counter must be flagged"
        assert risky[0].pattern == "monotone-counter"
        assert "induction" in risky[0].argument

    def test_abstraction_restores_the_real_state_objects(self):
        element = VerifiedNat(name="nat")
        original = element.flow_map
        summarize_element(element, CONFIG)
        assert element.flow_map is original


class TestGenericBaseline:
    def test_generic_verifier_completes_on_a_tiny_pipeline(self):
        pipeline = build_filter_chain(["ip_dst"])
        outcome = GenericVerifier(time_budget=30).check_crash_freedom(pipeline)
        assert outcome.completed
        assert outcome.verdict is Verdict.PROVED
        assert outcome.crashes == 0

    def test_generic_state_count_grows_with_loop_iterations(self):
        one = GenericVerifier(time_budget=30).check_crash_freedom(build_loop_microbenchmark(1))
        three = GenericVerifier(time_budget=30).check_crash_freedom(build_loop_microbenchmark(3))
        assert three.states > one.states

    def test_generic_verifier_respects_its_time_budget(self):
        pipeline = build_filter_chain(["ip_dst", "ip_src", "port_dst", "port_src"])
        outcome = GenericVerifier(time_budget=0.0).check_crash_freedom(pipeline)
        assert not outcome.completed
        assert outcome.verdict is Verdict.INCONCLUSIVE
