"""Concrete reproduction of the three Click bugs from Section 5.3.

These tests exercise the bugs on the *concrete* dataplane (with a watchdog for
the two infinite loops); the corresponding verifier-based discovery -- finding
the same bugs automatically from symbolic analysis -- is covered in
``tests/integration/test_verifier_bugs.py`` and in the Table 3 benchmark.
"""

import signal

import pytest

from repro.dataplane.pipelines import (
    build_click_nat_gateway,
    build_fragmenter_pipeline,
    build_network_gateway,
)
from repro.errors import AssertionFailure
from repro.net.builder import PacketBuilder
from repro.net.options import encode_lsrr, pad_options


class _Watchdog:
    """Fail fast (instead of hanging the test suite) on infinite loops."""

    def __init__(self, seconds: int = 5):
        self.seconds = seconds
        self.fired = False

    def __enter__(self):
        def handler(signum, frame):
            self.fired = True
            raise TimeoutError("watchdog fired: execution did not terminate")

        self._previous = signal.signal(signal.SIGALRM, handler)
        signal.alarm(self.seconds)
        return self

    def __exit__(self, exc_type, exc, tb):
        signal.alarm(0)
        signal.signal(signal.SIGALRM, self._previous)
        return exc_type is TimeoutError  # swallow the watchdog exception


def options_packet(options, payload=300, **ip_kwargs):
    ip_kwargs.setdefault("src", "1.1.1.1")
    ip_kwargs.setdefault("dst", "10.1.2.3")
    ip_kwargs.setdefault("ttl", 9)
    builder = PacketBuilder().ethernet().ipv4(**ip_kwargs)
    if options:
        builder = builder.ip_options(options, pad=False)
    return builder.udp(1, 2).payload(b"z" * payload).build()


class TestBug1FragmenterWithCopiedOption:
    """Fragmenting a packet that carries a copied option loops forever."""

    @pytest.mark.slow
    def test_infinite_loop_on_lsrr_option(self):
        pipeline = build_fragmenter_pipeline(with_ip_options=True, mtu=96)
        packet = options_packet(pad_options(encode_lsrr(["10.1.2.3"])))
        with _Watchdog(5) as watchdog:
            pipeline.run(packet)
        assert watchdog.fired, "bug #1 should make the fragmenter loop forever"

    def test_same_packet_is_fine_when_it_needs_no_fragmentation(self):
        pipeline = build_fragmenter_pipeline(with_ip_options=True, mtu=1500)
        packet = options_packet(pad_options(encode_lsrr(["10.1.2.3"])), payload=100)
        with _Watchdog(5) as watchdog:
            result = pipeline.run(packet)
        assert not watchdog.fired
        assert result.outputs


class TestBug2FragmenterWithZeroLengthOption:
    """A zero-length option wedges the fragmenter unless IPOptions filtered it."""

    ZERO_LENGTH_OPTION = bytes([7, 0, 0, 0])

    @pytest.mark.slow
    def test_infinite_loop_without_ip_options_element(self):
        pipeline = build_fragmenter_pipeline(with_ip_options=False, mtu=96)
        packet = options_packet(self.ZERO_LENGTH_OPTION)
        with _Watchdog(5) as watchdog:
            pipeline.run(packet)
        assert watchdog.fired, "bug #2 should make the fragmenter loop forever"

    def test_ip_options_element_shields_the_fragmenter(self):
        pipeline = build_fragmenter_pipeline(with_ip_options=True, mtu=96)
        packet = options_packet(self.ZERO_LENGTH_OPTION)
        with _Watchdog(5) as watchdog:
            result = pipeline.run(packet)
        assert not watchdog.fired
        # The malformed packet is discarded by the IP-options element.
        assert result.drops and result.drops[0][0] == "ipoptions"

    def test_packets_without_options_fragment_normally(self):
        pipeline = build_fragmenter_pipeline(with_ip_options=False, mtu=96)
        result = pipeline.run(options_packet(b""))
        assert not result.crashed
        assert len(result.outputs) > 1


class TestBug3ClickNatAssertion:
    """A hairpin packet (both tuples equal the public tuple) kills Click's NAT."""

    def hairpin(self):
        return (PacketBuilder().ethernet()
                .ipv4(src="1.2.3.4", dst="1.2.3.4")
                .udp(10000, 10000).payload(b"x").build())

    def test_gateway_with_click_nat_crashes(self):
        pipeline = build_click_nat_gateway(public_ip="1.2.3.4", public_port=10000)
        result = pipeline.run(self.hairpin())
        assert result.crashed
        assert isinstance(result.crash, AssertionFailure)

    def test_gateway_with_verified_nat_does_not_crash(self):
        pipeline = build_network_gateway(public_ip="1.2.3.4")
        result = pipeline.run(self.hairpin())
        assert not result.crashed

    def test_click_nat_survives_ordinary_traffic(self):
        pipeline = build_click_nat_gateway(public_ip="1.2.3.4", public_port=10000)
        normal = (PacketBuilder().ethernet().ipv4(src="192.168.0.7", dst="8.8.8.8")
                  .udp(5555, 53).payload(b"q").build())
        result = pipeline.run(normal)
        assert not result.crashed
        assert result.outputs
