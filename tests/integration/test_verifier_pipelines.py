"""End-to-end verifier tests on small pipelines.

These are the fast, deterministic integration tests; the heavier evaluation
pipelines (the full routers, the fragmenter pipelines, the generic-baseline
comparisons) live in ``benchmarks/`` where their run time is the measurement.
"""

import pytest

from repro.dataplane.element import Element
from repro.dataplane.elements import (
    CheckIPHeader,
    Classifier,
    DecIPTTL,
    DropBroadcasts,
    EtherDecap,
    HeaderFilter,
    IPFilter,
    IPOptions,
    PassThrough,
)
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.pipelines import build_filter_chain, build_lsrr_firewall
from repro.errors import AssertionFailure
from repro.net.packet import Packet
from repro.verifier import (
    FilteringProperty,
    VerifierConfig,
    Verdict,
    summarize_once,
    verify_bounded_execution,
    verify_crash_freedom,
    verify_filtering,
)

# 90 reference-machine seconds, scaled to the box actually running the suite
# so slow 1-core machines stop truncating step 1 mid-element (which flips
# verdict asserts from VIOLATED to INCONCLUSIVE).
from repro.verifier.calibration import calibrated_budget

CONFIG = VerifierConfig(time_budget=calibrated_budget(90))


class GuardedDivider(Element):
    """Crash-free only thanks to an upstream guarantee (the paper's Fig. 1 shape)."""

    def process(self, packet):
        ttl = packet.ip().ttl
        # CheckIPHeader cannot guarantee a non-zero TTL, but DecIPTTL upstream
        # guarantees ttl >= 1 on its forward port, so this never divides by 0.
        packet.set_meta("budget", 255 // ttl)
        return packet


class UnconditionalCrasher(Element):
    def process(self, packet):
        if packet.ip().ttl == 77:
            raise AssertionFailure("ttl 77 is cursed")
        return packet


class TestCrashFreedom:
    def test_filter_chain_is_proved_crash_free(self):
        result = verify_crash_freedom(build_filter_chain(["ip_dst", "ip_src"]), config=CONFIG)
        assert result.verdict is Verdict.PROVED
        assert result.stats.paths_composed == 0  # no suspects, step 2 unused

    def test_preprocessing_pipeline_is_proved_crash_free(self):
        pipeline = Pipeline.linear(
            [Classifier.ethertype_classifier(name="cls"), EtherDecap(name="decap"),
             CheckIPHeader(name="chk"), DecIPTTL(name="ttl"), DropBroadcasts(name="bcast")],
            name="preproc",
        )
        result = verify_crash_freedom(pipeline, config=CONFIG)
        assert result.proved

    def test_reachable_crash_is_reported_with_counterexample(self):
        pipeline = Pipeline.linear(
            [PassThrough(name="pass"), UnconditionalCrasher(name="crash")], name="crashy",
        )
        result = verify_crash_freedom(pipeline, config=CONFIG)
        assert result.violated
        packet = Packet.from_bytes(result.counterexamples[0].packet_bytes)
        assert packet.ip().ttl == 77
        # Replaying the counter-example reproduces the crash concretely.
        assert pipeline.run(packet).crashed

    def test_upstream_element_makes_suspect_infeasible(self):
        # In isolation GuardedDivider can divide by zero (ttl == 0), so step 1
        # tags a suspect; composed after DecIPTTL (which only forwards packets
        # with ttl >= 2 after decrementing) the suspect is infeasible -- the
        # paper's Fig. 1 scenario.
        pipeline = Pipeline.linear(
            [DecIPTTL(name="ttl"), GuardedDivider(name="div")], name="guarded",
        )
        result = verify_crash_freedom(pipeline, config=CONFIG)
        assert result.proved
        assert result.detail["suspects"], "step 1 must have found the division suspect"
        assert result.stats.paths_composed > 0  # step 2 had to discharge it

    def test_unguarded_divider_is_violated(self):
        pipeline = Pipeline.linear(
            [PassThrough(name="pass"), GuardedDivider(name="div")], name="unguarded",
        )
        result = verify_crash_freedom(pipeline, config=CONFIG)
        assert result.violated
        packet = Packet.from_bytes(result.counterexamples[0].packet_bytes)
        assert packet.ip().ttl == 0


class TestBoundedExecution:
    def test_filter_chain_bound_is_proved(self):
        result = verify_bounded_execution(build_filter_chain(["ip_dst"]),
                                          instruction_bound=500, config=CONFIG)
        assert result.proved
        assert result.detail["longest_path_ops"] <= 500

    @pytest.mark.slow
    def test_too_tight_bound_is_violated_with_packet(self):
        pipeline = Pipeline.linear(
            [CheckIPHeader(name="chk"), IPOptions(max_options=1, name="opts")], name="tight",
        )
        result = verify_bounded_execution(pipeline, instruction_bound=5, config=CONFIG)
        assert result.violated
        assert result.counterexamples

    def test_longest_path_is_at_least_the_common_path(self):
        pipeline = build_filter_chain(["ip_dst", "port_dst"])
        summary = summarize_once(pipeline, config=CONFIG)
        result = verify_bounded_execution(pipeline, config=CONFIG, summary=summary)
        assert result.proved
        assert result.detail["longest_path_ops"] >= max(
            segment.ops for segment in summary.summaries["filter-ip_dst"].segments
        )


class TestFiltering:
    def test_blacklist_property_proved_without_options_element(self):
        pipeline = Pipeline.linear(
            [CheckIPHeader(name="chk"),
             IPFilter.blacklist_sources(["10.66.0.0/16"], name="fw")],
            name="plain-firewall",
        )
        prop = FilteringProperty(expectation="dropped", src_prefix="10.66.0.0/16")
        result = verify_filtering(pipeline, prop, config=CONFIG)
        assert result.proved

    @pytest.mark.slow
    def test_lsrr_bypass_violates_property_and_replays(self):
        pipeline = build_lsrr_firewall(blacklist=("10.66.0.0/16",))
        prop = FilteringProperty(expectation="dropped", src_prefix="10.66.0.0/16")
        result = verify_filtering(pipeline, prop, config=CONFIG)
        assert result.violated
        packet = Packet.from_bytes(result.counterexamples[0].packet_bytes)
        assert (packet.ip().src >> 16) == 0x0A42  # 10.66.x.x
        replay = pipeline.run(packet)
        assert replay.outputs, "counter-example must actually bypass the firewall"

    def test_delivery_property_on_allowlisted_traffic(self):
        pipeline = Pipeline.linear(
            [HeaderFilter("ip_dst", "10.9.9.9", name="only-filter")], name="one-filter",
        )
        # Packets *not* addressed to the filtered destination must be delivered.
        prop = FilteringProperty(expectation="delivered", dst_ip="10.1.1.1")
        result = verify_filtering(pipeline, prop, config=CONFIG)
        assert result.proved
        # ... while packets to the filtered destination are provably dropped.
        prop2 = FilteringProperty(expectation="dropped", dst_ip="10.9.9.9")
        assert verify_filtering(pipeline, prop2, config=CONFIG).proved


class TestSharedSummaries:
    def test_summary_reuse_between_properties(self):
        pipeline = build_filter_chain(["ip_dst", "ip_src"])
        summary = summarize_once(pipeline, config=CONFIG)
        crash = verify_crash_freedom(pipeline, config=CONFIG, summary=summary)
        bounded = verify_bounded_execution(pipeline, config=CONFIG, summary=summary)
        assert crash.proved and bounded.proved
        # Reusing the summary means step 1 is not re-done: states match.
        assert crash.stats.states == bounded.stats.states == summary.total_states
