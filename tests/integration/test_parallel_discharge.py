"""Verdict parity of process-parallel step-2 suspect discharge (PR 9).

``solver_parallelism > 1`` fans the independent suspect feasibility searches
out over worker processes (``repro.verifier.parallel``).  Workers run the
identical searches with fresh per-worker solvers, so the parallel path may
only change wall time and cache warmth -- never verdicts.  These tests pin
that against the serial loop on the paper's Fig. 1 shape (a divider whose
safety depends on an upstream TTL guarantee), with enough suspects that the
pool path actually engages (a single suspect short-circuits to serial).
"""

from __future__ import annotations

import pytest

from repro.dataplane.element import Element
from repro.dataplane.pipeline import Pipeline
from repro.dataplane.elements import DecIPTTL, PassThrough
from repro.verifier import Verdict, VerifierConfig, verify_crash_freedom
from repro.verifier.calibration import calibrated_budget
from repro.verifier.parallel import resolved_parallelism

CONFIG = VerifierConfig(time_budget=calibrated_budget(90))


class TTLDivider(Element):
    """Divides by the TTL: a suspect in isolation, safe after DecIPTTL."""

    def process(self, packet):
        ttl = packet.ip().ttl
        packet.set_meta("budget", 255 // ttl)
        return packet


class TTLModDivider(Element):
    """A second, distinct division suspect over the same guarantee."""

    def process(self, packet):
        ttl = packet.ip().ttl
        packet.set_meta("slot", 200 % ttl)
        return packet


def guarded_pipeline():
    # Two suspects so the parallel branch (len(pending) > 1) engages.
    return Pipeline.linear(
        [DecIPTTL(name="ttl"), TTLDivider(name="div"), TTLModDivider(name="mod")],
        name="guarded-pair",
    )


def unguarded_pipeline():
    return Pipeline.linear(
        [PassThrough(name="pass"), TTLDivider(name="div"),
         TTLModDivider(name="mod")],
        name="unguarded-pair",
    )


class TestResolvedParallelism:
    def test_default_is_serial(self):
        assert resolved_parallelism(CONFIG) == 1

    def test_explicit_worker_count(self):
        assert resolved_parallelism(CONFIG.copy(solver_parallelism=3)) == 3

    def test_nonpositive_means_per_core(self):
        assert resolved_parallelism(CONFIG.copy(solver_parallelism=0)) >= 1


class TestParallelDischargeParity:
    def test_infeasible_suspects_proved_in_parallel(self):
        pipeline = guarded_pipeline()
        serial = verify_crash_freedom(pipeline, config=CONFIG)
        parallel = verify_crash_freedom(
            guarded_pipeline(), config=CONFIG.copy(solver_parallelism=2))

        assert serial.verdict is Verdict.PROVED
        assert parallel.verdict is Verdict.PROVED
        assert len(serial.detail["suspects"]) == 2
        assert parallel.detail["suspects"] == serial.detail["suspects"]
        assert parallel.detail["suspects_discharged"] == 2
        assert parallel.stats.paths_composed > 0  # step 2 really ran

    def test_feasible_crash_reported_identically_in_parallel(self):
        serial = verify_crash_freedom(unguarded_pipeline(), config=CONFIG)
        parallel = verify_crash_freedom(
            unguarded_pipeline(), config=CONFIG.copy(solver_parallelism=2))

        assert serial.verdict is Verdict.VIOLATED
        assert parallel.verdict is Verdict.VIOLATED
        # Both attach concrete crash-triggering packets: ttl == 0 is the only
        # value that makes the division crash reachable.
        assert parallel.counterexamples
        for result in (serial, parallel):
            from repro.net.packet import Packet

            packet = Packet.from_bytes(result.counterexamples[0].packet_bytes)
            assert packet.ip().ttl == 0

    def test_parallel_run_records_backend_stats(self):
        result = verify_crash_freedom(
            guarded_pipeline(), config=CONFIG.copy(solver_parallelism=2))
        # The parent's solver still answers step 1 / serial work, so the
        # per-backend block is present for --stats and the JSON payload.
        assert "native" in result.stats.solver_backends
