"""End-to-end resilience tests: fault injection, recovery, checkpoint/resume.

These are the acceptance scenarios of the fault-tolerance work: a verification
run survives worker deaths and cache corruption with the same verdict, an
interrupted run leaves a checkpoint that ``--resume`` completes, a resumed
step 2 re-examines only the suspects the aborted run never reached, and the
budget-degradation ladder escalates a truncated run back to a proof.
"""

import pytest

from repro.dataplane.element import Element
from repro.dataplane.elements import CheckIPHeader, DecIPTTL, DropBroadcasts
from repro.dataplane.pipeline import Pipeline
from repro.verifier import Verdict, VerifierConfig, summarize_once, verify_crash_freedom
from repro.verifier.checkpoint import CheckpointManager, list_runs, runs_dir
from repro.verifier.faults import FaultPlan


class GuardedDivider(Element):
    """Step-1 suspect that step 2 discharges (the paper's Fig. 1 shape)."""

    def process(self, packet):
        ttl = packet.ip().ttl
        packet.set_meta("budget", 255 // ttl)
        return packet


def preproc_pipeline() -> Pipeline:
    return Pipeline.linear(
        [CheckIPHeader(name="chk"), DecIPTTL(name="ttl"),
         DropBroadcasts(name="bcast")],
        name="resilience-preproc",
    )


def make_config(tmp_path, **overrides) -> VerifierConfig:
    overrides.setdefault("cache_dir", str(tmp_path))
    overrides.setdefault("cache_enabled", True)
    overrides.setdefault("workers", 1)
    return VerifierConfig(**overrides)


class TestFaultRecovery:
    def test_worker_kills_and_cache_corruption_keep_the_verdict(self, tmp_path):
        pipeline = preproc_pipeline()
        baseline = verify_crash_freedom(pipeline, config=make_config(tmp_path))
        assert baseline.verdict is Verdict.PROVED

        # Every fresh worker process dies on its first task (fresh one-shot
        # counters per process), so the recovery ladder runs all the way down:
        # pool restart -> element strikes -> quarantine to the serial path.
        # Meanwhile the warm on-disk entry for "chk" is scribbled over just
        # before it is probed, forcing the checksum/quarantine/recompute path.
        plan = FaultPlan.parse("worker-kill:1,cache-corrupt:chk")
        faulted = verify_crash_freedom(
            pipeline, config=make_config(tmp_path, workers=2, fault_plan=plan))

        assert faulted.verdict is Verdict.PROVED  # same verdict, degraded trip
        assert faulted.stats.worker_failures >= 1
        assert faulted.stats.retries >= 1
        assert faulted.stats.quarantined_elements  # struck elements went serial
        assert faulted.stats.cache_quarantined >= 1

        # The corruption self-healed: a fault-free rerun is served cleanly.
        healed = verify_crash_freedom(pipeline, config=make_config(tmp_path))
        assert healed.verdict is Verdict.PROVED
        assert healed.stats.worker_failures == 0

    def test_element_error_is_retried_in_process(self, tmp_path):
        plan = FaultPlan.parse("element-error:ttl:memory")
        result = verify_crash_freedom(
            preproc_pipeline(), config=make_config(tmp_path, fault_plan=plan))
        # The one-shot MemoryError burns one attempt; the bounded in-process
        # retry recomputes the element and the run still proves the property.
        assert result.verdict is Verdict.PROVED
        assert result.stats.retries >= 1


class TestCheckpointResume:
    def test_interrupt_leaves_checkpoint_and_resume_completes(self, tmp_path):
        pipeline = preproc_pipeline()
        # A synthetic SIGINT inside the second element's summarisation: the
        # first element is already summarised and checkpointed.
        plan = FaultPlan.parse("element-error:ttl:interrupt")
        aborted = verify_crash_freedom(
            pipeline,
            config=make_config(tmp_path, checkpoint_enabled=True, fault_plan=plan))

        assert aborted.verdict is Verdict.INCONCLUSIVE
        assert "interrupted" in aborted.reason
        assert aborted.detail["degradation"]["budget"] == "interrupted"
        run_id = aborted.detail["run_id"]
        assert aborted.stats.checkpoint_writes >= 1
        assert [run["run_id"] for run in list_runs(str(tmp_path))] == [run_id]

        resumed = verify_crash_freedom(
            pipeline,
            config=make_config(tmp_path, checkpoint_enabled=True, resume=True))
        assert resumed.verdict is Verdict.PROVED
        assert resumed.detail["run_id"] == run_id  # same run identity
        assert resumed.stats.checkpoint_hits >= 1  # step 1 reused the summary
        # Conclusive run: nothing left to resume, the checkpoint is discarded.
        assert list_runs(str(tmp_path)) == []

    def test_resumed_step2_skips_discharged_suspects(self, tmp_path):
        pipeline = Pipeline.linear(
            [DecIPTTL(name="ttl"), GuardedDivider(name="div")], name="guarded",
        )
        config = make_config(tmp_path, checkpoint_enabled=True)
        baseline = verify_crash_freedom(pipeline, config=config)
        assert baseline.verdict is Verdict.PROVED
        assert baseline.stats.paths_composed > 0  # step 2 had to discharge it
        assert list_runs(str(tmp_path)) == []     # conclusive: discarded

        # Craft the checkpoint an aborted run would have left: the division
        # suspect already proved infeasible.
        summary = summarize_once(pipeline, config=config)
        suspects = list(summary.suspect_crash_segments())
        assert len(suspects) == 1
        element_name, segment = suspects[0]
        manager = CheckpointManager.for_run(pipeline, "crash-freedom", config)
        manager.begin_step2()
        manager.mark_discharged(
            CheckpointManager.suspect_key(element_name, segment))
        manager.save(force=True)

        resumed = verify_crash_freedom(
            pipeline, config=make_config(tmp_path, checkpoint_enabled=True,
                                         resume=True))
        assert resumed.verdict is Verdict.PROVED
        assert resumed.detail["suspects_discharged"] == 1
        assert resumed.stats.paths_composed == 0  # frontier skipped the search

    def test_resume_strictness_without_checkpoint(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError, match="no checkpoint"):
            verify_crash_freedom(
                preproc_pipeline(),
                config=make_config(tmp_path, checkpoint_enabled=True, resume=True))


class TestDegradationLadder:
    def test_truncated_run_escalates_to_a_proof(self, tmp_path):
        # max 2 segments truncates CheckIPHeader (6 segments); the escalation
        # retry (x4 budgets) re-summarises it completely and upgrades the
        # would-be INCONCLUSIVE to PROVED.
        pipeline = Pipeline.linear(
            [CheckIPHeader(name="chk"), DecIPTTL(name="ttl")], name="tight",
        )
        starved = verify_crash_freedom(
            pipeline, config=make_config(tmp_path, max_segments_per_element=2))
        assert starved.verdict is Verdict.INCONCLUSIVE
        assert starved.detail["degradation"]["budget"] == "incomplete_step1"
        assert "chk" in starved.detail["degradation"]["incomplete_elements"]

        escalated = verify_crash_freedom(
            pipeline, config=make_config(tmp_path, max_segments_per_element=2,
                                         escalate_inconclusive=True))
        assert escalated.verdict is Verdict.PROVED
        assert escalated.stats.escalations >= 1
